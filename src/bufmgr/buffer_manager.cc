// Copyright 2026 the pdblb authors. MIT license.

#include "bufmgr/buffer_manager.h"

#include <algorithm>
#include <cassert>

namespace pdblb {

BufferManager::BufferManager(sim::Scheduler& sched, const BufferConfig& config,
                             DiskArray& disks, std::string name)
    : sched_(sched),
      config_(config),
      disks_(disks),
      name_(std::move(name)),
      frames_(static_cast<size_t>(std::max(1, config.buffer_pages))),
      policy_(EvictionPolicy::Create(config.eviction, frames_)) {
  // Free list: lowest slot first, refilled LIFO on eviction.
  const int32_t n = static_cast<int32_t>(frames_.size());
  for (int32_t s = 0; s < n; ++s) frames_[s].next = s + 1 < n ? s + 1 : -1;
  free_head_ = 0;
  // Page index at <= 50% load so linear probes stay short.
  size_t buckets = 16;
  while (buckets < frames_.size() * 2) buckets <<= 1;
  index_.assign(buckets, 0);
  index_mask_ = static_cast<uint32_t>(buckets - 1);
}

BufferManager::~BufferManager() {
  for (RangeRuns* runs : run_scratch_) delete runs;
}

int32_t BufferManager::Lookup(PageKey page) const {
  uint32_t i = static_cast<uint32_t>(PageKeyHash{}(page)) & index_mask_;
  while (index_[i] != 0) {
    int32_t slot = index_[i] - 1;
    if (frames_[slot].page == page) return slot;
    i = (i + 1) & index_mask_;
  }
  return -1;
}

void BufferManager::IndexInsert(PageKey page, int32_t slot) {
  uint32_t i = static_cast<uint32_t>(PageKeyHash{}(page)) & index_mask_;
  while (index_[i] != 0) i = (i + 1) & index_mask_;
  index_[i] = slot + 1;
}

void BufferManager::IndexErase(PageKey page) {
  uint32_t i = static_cast<uint32_t>(PageKeyHash{}(page)) & index_mask_;
  while (true) {
    assert(index_[i] != 0 && "erasing a page that is not indexed");
    if (frames_[index_[i] - 1].page == page) break;
    i = (i + 1) & index_mask_;
  }
  // Backward-shift deletion: pull every displaced entry of the probe chain
  // forward so lookups never need tombstones.
  uint32_t j = i;
  while (true) {
    j = (j + 1) & index_mask_;
    if (index_[j] == 0) break;
    uint32_t home = static_cast<uint32_t>(
                        PageKeyHash{}(frames_[index_[j] - 1].page)) &
                    index_mask_;
    // Move entry j into the hole at i iff probing from its home bucket
    // would have passed i (cyclic distance test).
    if (((j - home) & index_mask_) >= ((j - i) & index_mask_)) {
      index_[i] = index_[j];
      i = j;
    }
  }
  index_[i] = 0;
}

void BufferManager::Touch(int32_t slot) {
  BufferFrame& f = frames_[slot];
  f.prev_access = f.last_access;
  f.last_access = sched_.Now();
  policy_->OnAccess(slot);
}

void BufferManager::Admit(PageKey page) {
  assert(Lookup(page) < 0);
  assert(free_head_ >= 0 && "Admit with no free frame");
  int32_t slot = free_head_;
  BufferFrame& f = frames_[slot];
  free_head_ = f.next;
  f.page = page;
  f.last_access = sched_.Now();
  f.prev_access = BufferFrame::kNever;
  f.prev = -1;
  f.next = -1;
  f.dirty = false;
  f.resident = true;
  IndexInsert(page, slot);
  ++resident_;
  policy_->OnAdmit(slot);
}

void BufferManager::EvictOne() {
  int32_t slot = policy_->PickVictim();
  assert(slot >= 0 && frames_[slot].resident);
  BufferFrame& f = frames_[slot];
  if (f.dirty) {
    ++dirty_writebacks_;
    // No-force policy: dirty pages are written back asynchronously.
    sched_.Spawn(disks_.WriteRandom(f.page));
  }
  policy_->OnEvict(slot);
  IndexErase(f.page);
  ++evictions_;
  last_evicted_ = f.page;
  f.last_access = BufferFrame::kNever;
  f.prev_access = BufferFrame::kNever;
  f.freq = 0;
  f.referenced = false;
  f.dirty = false;
  f.resident = false;
  f.prev = -1;
  f.next = free_head_;
  free_head_ = slot;
  --resident_;
}

void BufferManager::ShrinkResidentTo(int limit) {
  if (limit < 0) limit = 0;
  while (resident_ > limit) EvictOne();
}

sim::Task<bool> BufferManager::Fetch(PageKey page, AccessPattern pattern,
                                     bool priority_oltp) {
  int32_t slot = Lookup(page);
  if (slot >= 0) {
    ++hits_;
    Touch(slot);
    co_return true;
  }
  ++misses_;

  if (UnreservedFrames() <= 0 && priority_oltp) {
    // Higher-priority OLTP work may reclaim join working space.
    StealFromVictims(1);
  }

  co_await disks_.Read(page, pattern);

  // A concurrent fetch may have admitted the page while we were on disk.
  slot = Lookup(page);
  if (slot >= 0) {
    Touch(slot);
    co_return false;
  }
  int pool_limit = UnreservedFrames();
  if (pool_limit > 0) {
    // Make room for the new page, then admit it.
    ShrinkResidentTo(pool_limit - 1);
    Admit(page);
  }
  // else: every frame is reserved by join working spaces and the caller has
  // no steal privilege; the page is passed through without caching.
  co_return false;
}

BufferManager::RangeRuns* BufferManager::AcquireRunScratch() {
  if (run_scratch_.empty()) {
    RangeRuns* runs = new RangeRuns();
    // Missing runs are separated by resident pages, so no scan can produce
    // more than capacity + 1 runs.  Reserving the bound makes the first
    // lease this vector's only allocation ever — a later scan that happens
    // to hit a new high-water run count must not touch the heap.
    runs->reserve(static_cast<size_t>(config_.buffer_pages) + 1);
    return runs;
  }
  RangeRuns* runs = run_scratch_.back();
  run_scratch_.pop_back();
  return runs;
}

void BufferManager::ReleaseRunScratch(RangeRuns* runs) {
  runs->clear();
  run_scratch_.push_back(runs);
}

sim::Task<int64_t> BufferManager::FetchRange(PageKey first, int64_t count) {
  // The run list is a leased scratch vector recycled through the manager's
  // pool (runs are separated by resident pages, so a list never outgrows
  // capacity + 1 entries — the lease reaches its high-water mark once and
  // steady-state scans stop allocating).  The lease destructor returns it
  // when the frame dies, including cancellation mid-I/O; at full scheduler
  // teardown the manager may already be gone, so the lease frees the vector
  // instead of touching it.
  struct Lease {
    sim::Scheduler* sched;
    BufferManager* mgr;
    RangeRuns* runs;
    ~Lease() {
      if (sched->tearing_down()) {
        delete runs;
        return;
      }
      mgr->ReleaseRunScratch(runs);
    }
  } lease{&sched_, this, AcquireRunScratch()};
  RangeRuns& runs = *lease.runs;  // (offset, length) missing runs

  int64_t hits = 0;
  // Identify the missing runs up front; each run is read with one striped
  // request across the disk array.
  int64_t run_start = -1;
  for (int64_t i = 0; i < count; ++i) {
    PageKey p{first.relation_id, first.page_no + i};
    int32_t slot = Lookup(p);
    if (slot >= 0) {
      ++hits_;
      ++hits;
      Touch(slot);
      if (run_start >= 0) {
        runs.emplace_back(run_start, i - run_start);
        run_start = -1;
      }
    } else {
      ++misses_;
      if (run_start < 0) run_start = i;
    }
  }
  if (run_start >= 0) runs.emplace_back(run_start, count - run_start);

  for (auto [offset, length] : runs) {
    co_await disks_.ReadStriped(
        PageKey{first.relation_id, first.page_no + offset}, length);
    for (int64_t i = 0; i < length; ++i) {
      PageKey p{first.relation_id, first.page_no + offset + i};
      int32_t slot = Lookup(p);
      if (slot >= 0) {
        Touch(slot);  // admitted by a concurrent fetch meanwhile
        continue;
      }
      int pool_limit = UnreservedFrames();
      if (pool_limit > 0) {
        ShrinkResidentTo(pool_limit - 1);
        Admit(p);
      }
    }
  }
  co_return hits;
}

void BufferManager::MarkDirty(PageKey page) {
  int32_t slot = Lookup(page);
  if (slot >= 0) frames_[slot].dirty = true;
}

bool BufferManager::IsResident(PageKey page) const {
  return Lookup(page) >= 0;
}

int BufferManager::TryReserve(int want_pages) {
  if (!mem_queue_.empty()) return 0;  // FCFS: queued joins go first
  // Joins may only reserve pages the protected hot set does not need.
  int granted = std::min(want_pages, GrantablePages());
  if (granted <= 0) return 0;
  reserved_ += granted;
  ShrinkResidentTo(UnreservedFrames());
  return granted;
}

sim::Task<int> BufferManager::ReserveWait(int min_pages, int want_pages) {
  min_pages = std::max(1, min_pages);
  want_pages = std::max(want_pages, min_pages);

  if (mem_queue_.empty() && GrantablePages() >= min_pages) {
    int granted = std::min(want_pages, GrantablePages());
    reserved_ += granted;
    ShrinkResidentTo(UnreservedFrames());
    co_return granted;
  }

  MemWaiter waiter{min_pages, want_pages, 0, nullptr};
  mem_queue_.push_back(&waiter);

  // `waiter` lives on this coroutine frame; mem_queue_ holds a raw pointer
  // into it.  The awaiter's destructor undoes that registration when the
  // frame is destroyed mid-suspension (Scheduler::Cancel cascade): either
  // the waiter is still queued (erase it) or the grant already happened and
  // a wake event is in flight (scrub it and give the reservation back).
  // The scheduler pointer is stored directly because at full teardown the
  // manager itself may already be gone.
  struct Awaiter {
    sim::Scheduler* sched;
    BufferManager* mgr;
    MemWaiter* w;
    std::coroutine_handle<> pending = nullptr;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      pending = h;
      w->handle = h;
    }
    void await_resume() noexcept { pending = nullptr; }
    ~Awaiter() {
      if (!pending || sched->tearing_down()) return;
      auto it = std::find(mgr->mem_queue_.begin(), mgr->mem_queue_.end(), w);
      if (it != mgr->mem_queue_.end()) {
        mgr->mem_queue_.erase(it);
        // Removing the head may unblock smaller requests behind it.
        mgr->ServeMemoryQueue();
        return;
      }
      sched->CancelHandle(pending);
      mgr->ReleaseReservation(w->granted);
    }
  };
  co_await Awaiter{&sched_, this, &waiter};
  co_return waiter.granted;
}

void BufferManager::ServeMemoryQueue() {
  while (!mem_queue_.empty()) {
    MemWaiter* head = mem_queue_.front();
    if (GrantablePages() < head->min_pages) break;
    head->granted = std::min(head->want_pages, GrantablePages());
    reserved_ += head->granted;
    ShrinkResidentTo(UnreservedFrames());
    mem_queue_.pop_front();
    // The waiter may not have suspended yet if Serve runs in the same event;
    // the handle is always set before any other event runs because the
    // queue is only served from ReleaseReservation (a separate event).
    assert(head->handle);
    sched_.ScheduleHandle(sched_.Now(), head->handle);
  }
}

void BufferManager::ReleaseReservation(int pages) {
  assert(pages >= 0);
  assert(reserved_ >= pages);
  reserved_ -= pages;
  ServeMemoryQueue();
}

sim::Task<> BufferManager::IngestBatch(PageKey first, int count) {
  assert(count >= 1);
  // Stage through a reservation no larger than the pool so the request is
  // always grantable; migration waits FCFS behind queued joins like any
  // other working-space customer.
  const int staging = std::min(count, capacity());
  int granted = co_await ReserveWait(staging, staging);
  // The guard releases the staging frames when the frame dies — normal
  // completion or cancellation mid-write (crash unwind); at full scheduler
  // teardown the manager may already be gone, so it must not be touched.
  struct StagingGuard {
    sim::Scheduler* sched;
    BufferManager* mgr;
    int pages;
    ~StagingGuard() {
      if (sched->tearing_down()) return;
      mgr->ReleaseReservation(pages);
    }
  } guard{&sched_, this, granted};
  co_await disks_.WriteBatch(first, count);
  // The pages are durable on the destination's disks but deliberately not
  // Admit()ed: cold bulk data must not displace the hot set.
  pages_ingested_ += count;
}

void BufferManager::OnCrash() {
  // Cancellation of the resident queries must have unwound every
  // reservation, queued waiter and victim registration first; a crash that
  // leaks any of them is an engine bug, not a modelling choice.
  assert(reserved_ == 0 && "crash with live reservations");
  assert(mem_queue_.empty() && "crash with queued memory waiters");
  assert(victims_.empty() && "crash with registered steal victims");
  // Volatile buffer contents are lost.  No writebacks: dirty pages are
  // recovered from the log in a real system, and the simulated disk image
  // is not page-accurate — restarting cold is the observable effect.
  const int32_t n = static_cast<int32_t>(frames_.size());
  for (int32_t s = 0; s < n; ++s) {
    BufferFrame& f = frames_[s];
    f.page = PageKey{0, 0};
    f.last_access = BufferFrame::kNever;
    f.prev_access = BufferFrame::kNever;
    f.prev = -1;
    f.next = s + 1 < n ? s + 1 : -1;
    f.freq = 0;
    f.referenced = false;
    f.dirty = false;
    f.resident = false;
  }
  free_head_ = 0;
  resident_ = 0;
  std::fill(index_.begin(), index_.end(), 0);
  policy_->Reset();
}

void BufferManager::RegisterVictim(MemoryVictim* victim) {
  victims_.push_back(victim);
}

void BufferManager::UnregisterVictim(MemoryVictim* victim) {
  victims_.erase(std::remove(victims_.begin(), victims_.end(), victim),
                 victims_.end());
}

void BufferManager::StealFromVictims(int needed) {
  while (UnreservedFrames() < needed) {
    MemoryVictim* fattest = nullptr;
    for (MemoryVictim* v : victims_) {
      if (v->ReservedPages() <= 0) continue;
      if (fattest == nullptr ||
          v->ReservedPages() > fattest->ReservedPages()) {
        fattest = v;
      }
    }
    if (fattest == nullptr) break;
    int got = fattest->StealPages(needed - UnreservedFrames());
    if (got <= 0) break;
    assert(got <= reserved_);
    reserved_ -= got;
    pages_stolen_ += got;
  }
}

int BufferManager::TouchedPages() const {
  SimTime cutoff = sched_.Now() - config_.touched_window_ms;
  int count = 0;
  for (const BufferFrame& f : frames_) {
    if (f.resident && f.last_access >= cutoff) ++count;
  }
  return count;
}

int BufferManager::HotPages() const {
  SimTime cutoff = sched_.Now() - config_.working_set_window_ms;
  int count = 0;
  for (const BufferFrame& f : frames_) {
    if (f.resident && f.prev_access >= cutoff) ++count;
  }
  return count;
}

int BufferManager::AvailablePages() const {
  return std::max(0, capacity() - reserved_ - TouchedPages());
}

int BufferManager::GrantablePages() const {
  return std::max(0, capacity() - reserved_ - HotPages());
}

double BufferManager::MemoryUtilization() const {
  double used = std::min<double>(capacity(), reserved_ + HotPages());
  return used / static_cast<double>(capacity());
}

void BufferManager::ResetStats() {
  hits_ = 0;
  misses_ = 0;
  pages_stolen_ = 0;
  dirty_writebacks_ = 0;
  evictions_ = 0;
}

}  // namespace pdblb
