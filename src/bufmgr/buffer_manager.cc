// Copyright 2026 the pdblb authors. MIT license.

#include "bufmgr/buffer_manager.h"

#include <algorithm>
#include <cassert>

namespace pdblb {

BufferManager::BufferManager(sim::Scheduler& sched, const BufferConfig& config,
                             DiskArray& disks, std::string name)
    : sched_(sched), config_(config), disks_(disks), name_(std::move(name)) {}

void BufferManager::Touch(PageKey page) {
  auto it = frames_.find(page);
  assert(it != frames_.end());
  Frame& f = it->second;
  lru_.erase(f.lru_pos);
  lru_.push_front(page);
  f.lru_pos = lru_.begin();
  f.prev_access = f.last_access;
  f.last_access = sched_.Now();
}

void BufferManager::Admit(PageKey page) {
  assert(frames_.find(page) == frames_.end());
  lru_.push_front(page);
  Frame f;
  f.lru_pos = lru_.begin();
  f.last_access = sched_.Now();
  frames_[page] = f;
}

void BufferManager::ShrinkResidentTo(int limit) {
  if (limit < 0) limit = 0;
  while (static_cast<int>(frames_.size()) > limit) {
    PageKey victim = lru_.back();
    auto it = frames_.find(victim);
    assert(it != frames_.end());
    if (it->second.dirty) {
      ++dirty_writebacks_;
      // No-force policy: dirty pages are written back asynchronously.
      sched_.Spawn(disks_.WriteRandom(victim));
    }
    frames_.erase(it);
    lru_.pop_back();
  }
}

sim::Task<bool> BufferManager::Fetch(PageKey page, AccessPattern pattern,
                                     bool priority_oltp) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++hits_;
    Touch(page);
    co_return true;
  }
  ++misses_;

  if (UnreservedFrames() <= 0 && priority_oltp) {
    // Higher-priority OLTP work may reclaim join working space.
    StealFromVictims(1);
  }

  co_await disks_.Read(page, pattern);

  // A concurrent fetch may have admitted the page while we were on disk.
  if (frames_.find(page) != frames_.end()) {
    Touch(page);
    co_return false;
  }
  int pool_limit = UnreservedFrames();
  if (pool_limit > 0) {
    // Make room for the new page, then admit it.
    ShrinkResidentTo(pool_limit - 1);
    Admit(page);
  }
  // else: every frame is reserved by join working spaces and the caller has
  // no steal privilege; the page is passed through without caching.
  co_return false;
}

sim::Task<int64_t> BufferManager::FetchRange(PageKey first, int64_t count) {
  int64_t hits = 0;
  // Identify the missing runs up front; each run is read with one striped
  // request across the disk array.
  std::vector<std::pair<int64_t, int64_t>> runs;  // (offset, length)
  int64_t run_start = -1;
  for (int64_t i = 0; i < count; ++i) {
    PageKey p{first.relation_id, first.page_no + i};
    if (frames_.find(p) != frames_.end()) {
      ++hits_;
      ++hits;
      Touch(p);
      if (run_start >= 0) {
        runs.emplace_back(run_start, i - run_start);
        run_start = -1;
      }
    } else {
      ++misses_;
      if (run_start < 0) run_start = i;
    }
  }
  if (run_start >= 0) runs.emplace_back(run_start, count - run_start);

  for (auto [offset, length] : runs) {
    co_await disks_.ReadStriped(
        PageKey{first.relation_id, first.page_no + offset}, length);
    for (int64_t i = 0; i < length; ++i) {
      PageKey p{first.relation_id, first.page_no + offset + i};
      if (frames_.find(p) != frames_.end()) {
        Touch(p);  // admitted by a concurrent fetch meanwhile
        continue;
      }
      int pool_limit = UnreservedFrames();
      if (pool_limit > 0) {
        ShrinkResidentTo(pool_limit - 1);
        Admit(p);
      }
    }
  }
  co_return hits;
}

void BufferManager::MarkDirty(PageKey page) {
  auto it = frames_.find(page);
  if (it != frames_.end()) it->second.dirty = true;
}

bool BufferManager::IsResident(PageKey page) const {
  return frames_.find(page) != frames_.end();
}

int BufferManager::TryReserve(int want_pages) {
  if (!mem_queue_.empty()) return 0;  // FCFS: queued joins go first
  // Joins may only reserve pages the protected hot set does not need.
  int granted = std::min(want_pages, GrantablePages());
  if (granted <= 0) return 0;
  reserved_ += granted;
  ShrinkResidentTo(UnreservedFrames());
  return granted;
}

sim::Task<int> BufferManager::ReserveWait(int min_pages, int want_pages) {
  min_pages = std::max(1, min_pages);
  want_pages = std::max(want_pages, min_pages);

  if (mem_queue_.empty() && GrantablePages() >= min_pages) {
    int granted = std::min(want_pages, GrantablePages());
    reserved_ += granted;
    ShrinkResidentTo(UnreservedFrames());
    co_return granted;
  }

  MemWaiter waiter{min_pages, want_pages, 0, nullptr};
  mem_queue_.push_back(&waiter);

  // `waiter` lives on this coroutine frame; mem_queue_ holds a raw pointer
  // into it.  The awaiter's destructor undoes that registration when the
  // frame is destroyed mid-suspension (Scheduler::Cancel cascade): either
  // the waiter is still queued (erase it) or the grant already happened and
  // a wake event is in flight (scrub it and give the reservation back).
  // The scheduler pointer is stored directly because at full teardown the
  // manager itself may already be gone.
  struct Awaiter {
    sim::Scheduler* sched;
    BufferManager* mgr;
    MemWaiter* w;
    std::coroutine_handle<> pending = nullptr;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      pending = h;
      w->handle = h;
    }
    void await_resume() noexcept { pending = nullptr; }
    ~Awaiter() {
      if (!pending || sched->tearing_down()) return;
      auto it = std::find(mgr->mem_queue_.begin(), mgr->mem_queue_.end(), w);
      if (it != mgr->mem_queue_.end()) {
        mgr->mem_queue_.erase(it);
        // Removing the head may unblock smaller requests behind it.
        mgr->ServeMemoryQueue();
        return;
      }
      sched->CancelHandle(pending);
      mgr->ReleaseReservation(w->granted);
    }
  };
  co_await Awaiter{&sched_, this, &waiter};
  co_return waiter.granted;
}

void BufferManager::ServeMemoryQueue() {
  while (!mem_queue_.empty()) {
    MemWaiter* head = mem_queue_.front();
    if (GrantablePages() < head->min_pages) break;
    head->granted = std::min(head->want_pages, GrantablePages());
    reserved_ += head->granted;
    ShrinkResidentTo(UnreservedFrames());
    mem_queue_.pop_front();
    // The waiter may not have suspended yet if Serve runs in the same event;
    // the handle is always set before any other event runs because the
    // queue is only served from ReleaseReservation (a separate event).
    assert(head->handle);
    sched_.ScheduleHandle(sched_.Now(), head->handle);
  }
}

void BufferManager::ReleaseReservation(int pages) {
  assert(pages >= 0);
  assert(reserved_ >= pages);
  reserved_ -= pages;
  ServeMemoryQueue();
}

void BufferManager::OnCrash() {
  // Cancellation of the resident queries must have unwound every
  // reservation, queued waiter and victim registration first; a crash that
  // leaks any of them is an engine bug, not a modelling choice.
  assert(reserved_ == 0 && "crash with live reservations");
  assert(mem_queue_.empty() && "crash with queued memory waiters");
  assert(victims_.empty() && "crash with registered steal victims");
  // Volatile buffer contents are lost.  No writebacks: dirty pages are
  // recovered from the log in a real system, and the simulated disk image
  // is not page-accurate — restarting cold is the observable effect.
  frames_.clear();
  lru_.clear();
}

void BufferManager::RegisterVictim(MemoryVictim* victim) {
  victims_.push_back(victim);
}

void BufferManager::UnregisterVictim(MemoryVictim* victim) {
  victims_.erase(std::remove(victims_.begin(), victims_.end(), victim),
                 victims_.end());
}

void BufferManager::StealFromVictims(int needed) {
  while (UnreservedFrames() < needed) {
    MemoryVictim* fattest = nullptr;
    for (MemoryVictim* v : victims_) {
      if (v->ReservedPages() <= 0) continue;
      if (fattest == nullptr ||
          v->ReservedPages() > fattest->ReservedPages()) {
        fattest = v;
      }
    }
    if (fattest == nullptr) break;
    int got = fattest->StealPages(needed - UnreservedFrames());
    if (got <= 0) break;
    assert(got <= reserved_);
    reserved_ -= got;
    pages_stolen_ += got;
  }
}

int BufferManager::TouchedPages() const {
  SimTime cutoff = sched_.Now() - config_.touched_window_ms;
  int count = 0;
  for (const auto& [page, frame] : frames_) {
    if (frame.last_access >= cutoff) ++count;
  }
  return count;
}

int BufferManager::HotPages() const {
  SimTime cutoff = sched_.Now() - config_.working_set_window_ms;
  int count = 0;
  for (const auto& [page, frame] : frames_) {
    if (frame.prev_access >= cutoff) ++count;
  }
  return count;
}

int BufferManager::AvailablePages() const {
  return std::max(0, capacity() - reserved_ - TouchedPages());
}

int BufferManager::GrantablePages() const {
  return std::max(0, capacity() - reserved_ - HotPages());
}

double BufferManager::MemoryUtilization() const {
  double used = std::min<double>(capacity(), reserved_ + HotPages());
  return used / static_cast<double>(capacity());
}

void BufferManager::ResetStats() {
  hits_ = 0;
  misses_ = 0;
  pages_stolen_ = 0;
  dirty_writebacks_ = 0;
}

}  // namespace pdblb
