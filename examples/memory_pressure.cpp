// Copyright 2026 the pdblb authors. MIT license.
//
// Memory pressure walk-through: shrinks the per-PE buffer step by step and
// shows how the integrated MIN-IO-SUOPT strategy reacts by raising the
// degree of join parallelism (spreading the hash table over more nodes)
// while the CPU-only p_mu-cpu + LUM stays at p_su-opt and pays with
// overflow I/O — the paper's Fig. 7 effect as an interactive narrative.

#include <cstdio>

#include "common/table.h"
#include "core/cost_model.h"
#include "engine/cluster.h"

int main() {
  using namespace pdblb;

  std::printf("Shrinking the database buffer on an 80-node system\n"
              "(joins at 0.05 QPS/PE, 1 disk per PE for temp files):\n\n");

  TextTable t({"buffer pages/PE", "strategy", "join RT [ms]", "avg degree",
               "temp pg/join", "mem util"});

  for (int buffer_pages : {50, 20, 10, 5}) {
    for (StrategyConfig strategy :
         {strategies::PmuCpuLUM(), strategies::MinIOSuOpt()}) {
      SystemConfig cfg;
      cfg.num_pes = 80;
      cfg.buffer.buffer_pages = buffer_pages;
      cfg.disk.disks_per_pe = 1;
      cfg.join_query.arrival_rate_per_pe_qps = 0.05;
      cfg.strategy = strategy;
      cfg.warmup_ms = 3000;
      cfg.measurement_ms = 12000;

      std::printf("running buffer=%2d pages, %-14s ...\n", buffer_pages,
                  strategy.Name().c_str());
      Cluster cluster(cfg);
      MetricsReport r = cluster.Run();
      t.AddRow({std::to_string(buffer_pages), strategy.Name(),
                TextTable::Num(r.join_rt_ms, 1),
                TextTable::Num(r.avg_degree, 1),
                TextTable::Num(r.temp_pages_written_per_join, 1),
                TextTable::Num(r.memory_utilization, 2)});
    }
  }

  std::printf("\n");
  std::fputs(t.ToString().c_str(), stdout);
  std::printf(
      "\nAs memory shrinks, p_mu-cpu + LUM keeps its CPU-derived degree "
      "(~p_su-opt = 30)\nand the per-processor hash-table share stops "
      "fitting, so temp-file I/O grows.\nMIN-IO-SUOPT reads the AVAIL-MEMORY "
      "array and raises the degree instead,\nspreading the hash table thin "
      "enough to avoid (or minimize) overflow I/O.\n");
  return 0;
}
