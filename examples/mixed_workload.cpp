// Copyright 2026 the pdblb authors. MIT license.
//
// Mixed query/OLTP scenario (the paper's Section 5.3 motivation): a
// 20-node system where the four A-nodes run a debit-credit OLTP load at
// 100 TPS each while join queries arrive everywhere.  Compares how each
// class fares under a CPU-only dynamic strategy versus the integrated
// multi-resource OPT-IO-CPU — the paper's headline result is that the
// integrated strategy keeps join work off the OLTP nodes.

#include <cstdio>

#include "common/table.h"
#include "engine/cluster.h"

int main() {
  using namespace pdblb;

  TextTable t({"strategy", "join RT [ms]", "avg degree", "OLTP RT [ms]",
               "OLTP TPS", "CPU util", "mem util"});

  for (StrategyConfig strategy :
       {strategies::PsuOptRandom(), strategies::PmuCpuLUM(),
        strategies::OptIOCpu()}) {
    SystemConfig cfg;
    cfg.num_pes = 20;
    cfg.join_query.arrival_rate_per_pe_qps = 0.075;
    cfg.oltp.enabled = true;
    cfg.oltp.placement = OltpPlacement::kANodes;  // OLTP on 20% of nodes
    cfg.disk.disks_per_pe = 5;
    cfg.strategy = strategy;
    cfg.warmup_ms = 3000;
    cfg.measurement_ms = 15000;

    std::printf("running %-18s ...\n", strategy.Name().c_str());
    Cluster cluster(cfg);
    MetricsReport r = cluster.Run();
    t.AddRow({strategy.Name(), TextTable::Num(r.join_rt_ms, 1),
              TextTable::Num(r.avg_degree, 1), TextTable::Num(r.oltp_rt_ms, 1),
              TextTable::Num(r.oltp_throughput_tps, 0),
              TextTable::Num(r.cpu_utilization, 2),
              TextTable::Num(r.memory_utilization, 2)});
  }

  std::printf("\nMixed workload, 20 PEs, OLTP (100 TPS/node) on the 4 A "
              "nodes, joins 0.075 QPS/PE:\n\n");
  std::fputs(t.ToString().c_str(), stdout);
  std::printf(
      "\nReading the table: the static RANDOM scheme drags both classes "
      "down;\np_mu-cpu + LUM still schedules joins on the OLTP nodes when "
      "average CPU\nutilization is low (its degree rule is CPU-only); "
      "OPT-IO-CPU sees the OLTP\nnodes' low free memory and keeps joins on "
      "the other 16 nodes, which helps\nboth the joins and the OLTP "
      "transactions.\n");
  return 0;
}
