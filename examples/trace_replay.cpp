// Copyright 2026 the pdblb authors. MIT license.
//
// Trace replay: record a workload trace, then replay the *identical*
// arrival sequence against two different load-balancing strategies — the
// trace-driven evaluation mode the paper's simulator supports (Section 4,
// "use of real-life database traces [18]").  Because both runs see the same
// arrivals, the response-time difference is purely the strategies' doing.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_replay [trace-file]
//
// With a file argument the trace is written there and read back (so you can
// inspect or hand-edit it); without, it stays in memory.

#include <cstdio>

#include "common/table.h"
#include "engine/cluster.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace pdblb;

  const int num_pes = 30;
  const double horizon_ms = 20000.0;

  // 1. Synthesize a mixed trace: joins + index scans + OLTP on the A nodes.
  std::vector<PeId> oltp_nodes;
  for (PeId pe = 0; pe < num_pes / 5; ++pe) oltp_nodes.push_back(pe);
  Trace trace = SynthesizeTrace(/*seed=*/99, horizon_ms,
                                /*join_qps=*/2.0, /*scan_qps=*/1.0,
                                /*update_qps=*/0.0, /*multiway_qps=*/0.0,
                                oltp_nodes, /*oltp_tps_per_node=*/60.0);
  std::printf("Synthesized a trace with %zu arrival events over %.0f s.\n",
              trace.size(), horizon_ms / 1000.0);

  if (argc > 1) {
    if (Status st = trace.WriteFile(argv[1]); !st.ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n", st.ToString().c_str());
      return 1;
    }
    Trace loaded;
    if (Status st = Trace::ReadFile(argv[1], &loaded); !st.ok()) {
      std::fprintf(stderr, "cannot read trace: %s\n", st.ToString().c_str());
      return 1;
    }
    trace = std::move(loaded);
    std::printf("Round-tripped the trace through %s.\n", argv[1]);
  }

  // 2. Replay the identical arrivals under two strategies.
  auto run = [&](StrategyConfig strategy) {
    SystemConfig cfg;
    cfg.num_pes = num_pes;
    cfg.join_query.arrival_rate_per_pe_qps = 0.0;  // the trace drives us
    cfg.scan_query.selectivity = 0.01;
    cfg.oltp.enabled = true;  // schema needs the OLTP relations
    cfg.oltp.placement = OltpPlacement::kANodes;
    cfg.strategy = strategy;
    cfg.warmup_ms = 2000.0;
    cfg.measurement_ms = horizon_ms - cfg.warmup_ms;
    Cluster cluster(cfg);
    cluster.SetTrace(trace);
    return cluster.Run();
  };

  TextTable t({"strategy", "join RT [ms]", "scan RT [ms]", "OLTP RT [ms]",
               "avg degree", "CPU util"});
  for (StrategyConfig strategy :
       {strategies::PsuOptRandom(), strategies::OptIOCpu()}) {
    MetricsReport r = run(strategy);
    t.AddRow({strategy.Name(), TextTable::Num(r.join_rt_ms, 1),
              TextTable::Num(r.scan_rt_ms, 1),
              TextTable::Num(r.oltp_rt_ms, 1),
              TextTable::Num(r.avg_degree, 1),
              TextTable::Num(r.cpu_utilization, 2)});
  }
  std::fputs(t.ToString().c_str(), stdout);
  std::printf("\nSame arrivals, different strategies: the response-time gap "
              "is pure scheduling.\n");
  return 0;
}
