// Copyright 2026 the pdblb authors. MIT license.
//
// Strategy explorer: runs every load-balancing strategy of the paper on a
// configurable scenario and prints a comparison table.
//
// Usage:
//   strategy_explorer [num_pes] [selectivity_%] [arrival_qps_per_pe]
// e.g.
//   ./build/examples/strategy_explorer 80 1 0.25

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "core/cost_model.h"
#include "engine/cluster.h"

int main(int argc, char** argv) {
  using namespace pdblb;

  int num_pes = argc > 1 ? std::atoi(argv[1]) : 40;
  double selectivity_pct = argc > 2 ? std::atof(argv[2]) : 1.0;
  double rate = argc > 3 ? std::atof(argv[3]) : 0.25;

  SystemConfig base;
  base.num_pes = num_pes;
  base.join_query.scan_selectivity = selectivity_pct / 100.0;
  base.join_query.arrival_rate_per_pe_qps = rate;
  base.warmup_ms = 3000;
  base.measurement_ms = 15000;
  if (Status st = base.Validate(); !st.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", st.ToString().c_str());
    return 1;
  }

  CostModel model(base);
  std::printf("Scenario: %d PEs, %.2f%% selectivity, %.3f QPS/PE "
              "(p_su-opt=%d, p_su-noIO=%d, hash table=%ld pages)\n\n",
              num_pes, selectivity_pct, rate, model.PsuOpt(), model.PsuNoIO(),
              static_cast<long>(model.HashTablePages()));

  const StrategyConfig all[] = {
      strategies::PsuOptRandom(),  strategies::PsuOptLUC(),
      strategies::PsuOptLUM(),     strategies::PsuNoIORandom(),
      strategies::PsuNoIOLUC(),    strategies::PsuNoIOLUM(),
      strategies::PmuCpuRandom(),  strategies::PmuCpuLUM(),
      strategies::RateMatchLUC(),  // the Section 6 baseline [20]
      strategies::MinIO(),         strategies::MinIOSuOpt(),
      strategies::OptIOCpu(),
  };

  TextTable t({"strategy", "type", "join RT [ms]", "deg", "CPU", "disk",
               "mem", "temp pg/join", "QPS"});
  for (const StrategyConfig& strategy : all) {
    SystemConfig cfg = base;
    cfg.strategy = strategy;
    std::printf("running %-20s ...\n", strategy.Name().c_str());
    Cluster cluster(cfg);
    MetricsReport r = cluster.Run();
    const char* type =
        strategy.integrated != IntegratedPolicyKind::kNone ? "integrated"
        : strategy.degree == DegreePolicyKind::kDynamicCpu ||
                strategy.degree == DegreePolicyKind::kRateMatch
            ? "isolated/dyn"
            : "isolated/static";
    t.AddRow({strategy.Name(), type, TextTable::Num(r.join_rt_ms, 1),
              TextTable::Num(r.avg_degree, 1),
              TextTable::Num(r.cpu_utilization, 2),
              TextTable::Num(r.disk_utilization, 2),
              TextTable::Num(r.memory_utilization, 2),
              TextTable::Num(r.temp_pages_written_per_join, 1),
              TextTable::Num(r.join_throughput_qps, 2)});
  }
  std::printf("\n");
  std::fputs(t.ToString().c_str(), stdout);
  return 0;
}
