// Copyright 2026 the pdblb authors. MIT license.
//
// Quickstart: simulate a 40-node Shared Nothing parallel database system
// executing concurrent hash-join queries under the paper's default workload,
// using the dynamic multi-resource strategy OPT-IO-CPU, and print what the
// planner decided and how the system behaved.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/table.h"
#include "core/cost_model.h"
#include "engine/cluster.h"

int main() {
  using namespace pdblb;

  // 1. Configure the system.  SystemConfig defaults are the paper's
  //    parameter table (Fig. 4): 20 MIPS PEs, 0.4 MB buffers, 10 disks per
  //    PE, relation A (100 MB) on 20% of the nodes, B (400 MB) on 80%.
  SystemConfig cfg;
  cfg.num_pes = 40;
  cfg.join_query.scan_selectivity = 0.01;        // 1% scans
  cfg.join_query.arrival_rate_per_pe_qps = 0.25; // open arrivals
  cfg.strategy = strategies::OptIOCpu();         // the paper's best
  cfg.warmup_ms = 3000;
  cfg.measurement_ms = 15000;

  if (Status st = cfg.Validate(); !st.ok()) {
    std::fprintf(stderr, "bad config: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. What does the analytic cost model say about this query class?
  CostModel model(cfg);
  std::printf("Join query class at %.1f%% selectivity:\n",
              cfg.join_query.scan_selectivity * 100);
  std::printf("  hash table size        : %ld pages\n",
              static_cast<long>(model.HashTablePages()));
  std::printf("  p_su-opt  (single-user): %d join processors\n",
              model.PsuOpt());
  std::printf("  p_su-noIO (formula 3.1): %d join processors\n",
              model.PsuNoIO());
  std::printf("  p_mu-cpu at 70%% CPU    : %d join processors\n\n",
              model.PmuCpu(0.7));

  // 3. Run the simulation.
  std::printf("Simulating %d PEs with strategy %s ...\n\n", cfg.num_pes,
              cfg.strategy.Name().c_str());
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();

  // 4. Report.
  TextTable t({"metric", "value"});
  t.AddRow({"join queries completed", std::to_string(r.joins_completed)});
  t.AddRow({"avg join response time", TextTable::Num(r.join_rt_ms, 1) + " ms"});
  t.AddRow({"max join response time",
            TextTable::Num(r.join_rt_max_ms, 1) + " ms"});
  t.AddRow({"avg degree of join parallelism", TextTable::Num(r.avg_degree, 1)});
  t.AddRow({"join throughput", TextTable::Num(r.join_throughput_qps, 2) +
                                   " QPS"});
  t.AddRow({"avg CPU utilization", TextTable::Num(r.cpu_utilization * 100, 1) +
                                       " %"});
  t.AddRow({"avg disk utilization",
            TextTable::Num(r.disk_utilization * 100, 1) + " %"});
  t.AddRow({"avg memory utilization",
            TextTable::Num(r.memory_utilization * 100, 1) + " %"});
  t.AddRow({"temp-file pages per join",
            TextTable::Num(r.temp_pages_written_per_join, 1)});
  t.AddRow({"avg memory-queue wait",
            TextTable::Num(r.avg_memory_queue_wait_ms, 1) + " ms"});
  std::fputs(t.ToString().c_str(), stdout);
  return 0;
}
