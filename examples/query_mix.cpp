// Copyright 2026 the pdblb authors. MIT license.
//
// Query mix: exercises every workload class of the paper's Section 4 model
// at once — two-way hash joins, a 3-way join pipeline, clustered index
// scans, update statements (2PL + full 2PC) and debit-credit OLTP — and
// prints one response-time row per class.
//
// This is the "real system" situation the paper motivates: complex queries
// of very different resource profiles competing with transactions, where
// dynamic multi-resource load balancing has the most potential (their
// Section 5.3).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/query_mix [num_pes]

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "engine/cluster.h"

int main(int argc, char** argv) {
  using namespace pdblb;

  SystemConfig cfg;
  cfg.num_pes = argc > 1 ? std::atoi(argv[1]) : 40;

  // Two-way joins: the paper's base query class.
  cfg.join_query.arrival_rate_per_pe_qps = 0.05;

  // A 3-way join pipeline (A |><| B) |><| C, planned stage by stage.
  cfg.multiway_join.enabled = true;
  cfg.multiway_join.ways = 3;
  cfg.multiway_join.arrival_rate_per_pe_qps = 0.01;

  // Clustered index scans on B.
  cfg.scan_query.enabled = true;
  cfg.scan_query.access = ScanAccess::kClusteredIndex;
  cfg.scan_query.relation = TargetRelation::kB;
  cfg.scan_query.selectivity = 0.01;
  cfg.scan_query.arrival_rate_per_pe_qps = 0.05;

  // Update statements on A (indexed predicate).
  cfg.update_query.enabled = true;
  cfg.update_query.relation = TargetRelation::kA;
  cfg.update_query.selectivity = 0.001;
  cfg.update_query.arrival_rate_per_pe_qps = 0.05;

  // Debit-credit OLTP on the A nodes.
  cfg.oltp.enabled = true;
  cfg.oltp.placement = OltpPlacement::kANodes;
  cfg.oltp.tps_per_node = 50.0;

  cfg.strategy = strategies::OptIOCpu();
  cfg.warmup_ms = 3000;
  cfg.measurement_ms = 20000;

  if (Status st = cfg.Validate(); !st.ok()) {
    std::fprintf(stderr, "bad config: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("Running a %d-PE cluster with all five workload classes "
              "(%s)...\n\n",
              cfg.num_pes, cfg.strategy.Name().c_str());
  Cluster cluster(cfg);
  MetricsReport r = cluster.Run();

  TextTable t({"class", "completed", "avg RT [ms]", "notes"});
  t.AddRow({"2-way join", std::to_string(r.joins_completed),
            TextTable::Num(r.join_rt_ms, 1),
            "avg degree " + TextTable::Num(r.avg_degree, 1)});
  t.AddRow({"3-way join", std::to_string(r.multiway_completed),
            TextTable::Num(r.multiway_rt_ms, 1), "2 pipeline stages"});
  t.AddRow({"index scan", std::to_string(r.scans_completed),
            TextTable::Num(r.scan_rt_ms, 1), "clustered, 1% of B"});
  t.AddRow({"update stmt", std::to_string(r.updates_completed),
            TextTable::Num(r.update_rt_ms, 1),
            std::to_string(r.update_aborts) + " deadlock aborts"});
  t.AddRow({"OLTP txn", std::to_string(r.oltp_completed),
            TextTable::Num(r.oltp_rt_ms, 1),
            TextTable::Num(r.oltp_throughput_tps, 0) + " TPS"});
  std::fputs(t.ToString().c_str(), stdout);

  std::printf("\nCluster averages: CPU %.0f%%, disk %.0f%%, memory %.0f%%\n",
              r.cpu_utilization * 100, r.disk_utilization * 100,
              r.memory_utilization * 100);
  return 0;
}
